/root/repo/target/debug/deps/chaos-b723414fa169d22e.d: crates/collector/tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-b723414fa169d22e.rmeta: crates/collector/tests/chaos.rs Cargo.toml

crates/collector/tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
