/root/repo/target/debug/deps/ablation_wrappers-60e6bc72f677bdcf.d: crates/bench/src/bin/ablation_wrappers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_wrappers-60e6bc72f677bdcf.rmeta: crates/bench/src/bin/ablation_wrappers.rs Cargo.toml

crates/bench/src/bin/ablation_wrappers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
