/root/repo/target/debug/deps/leaklab_cli-eb4f59934ac7eeef.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libleaklab_cli-eb4f59934ac7eeef.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
