/root/repo/target/debug/deps/staticlint_cost-b900535c89aca30e.d: crates/bench/benches/staticlint_cost.rs Cargo.toml

/root/repo/target/debug/deps/libstaticlint_cost-b900535c89aca30e.rmeta: crates/bench/benches/staticlint_cost.rs Cargo.toml

crates/bench/benches/staticlint_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
