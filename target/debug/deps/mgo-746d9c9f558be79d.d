/root/repo/target/debug/deps/mgo-746d9c9f558be79d.d: crates/cli/src/bin/mgo.rs

/root/repo/target/debug/deps/mgo-746d9c9f558be79d: crates/cli/src/bin/mgo.rs

crates/cli/src/bin/mgo.rs:
