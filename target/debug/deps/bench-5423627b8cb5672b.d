/root/repo/target/debug/deps/bench-5423627b8cb5672b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-5423627b8cb5672b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
