/root/repo/target/debug/deps/proptests-02166b8a105b35d4.d: crates/gosim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-02166b8a105b35d4.rmeta: crates/gosim/tests/proptests.rs Cargo.toml

crates/gosim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
