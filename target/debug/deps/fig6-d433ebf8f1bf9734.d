/root/repo/target/debug/deps/fig6-d433ebf8f1bf9734.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-d433ebf8f1bf9734: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
