/root/repo/target/debug/deps/corpus-11fdc5ceb4924746.d: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/patterns.rs crates/corpus/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libcorpus-11fdc5ceb4924746.rmeta: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/patterns.rs crates/corpus/src/stats.rs Cargo.toml

crates/corpus/src/lib.rs:
crates/corpus/src/gen.rs:
crates/corpus/src/patterns.rs:
crates/corpus/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
