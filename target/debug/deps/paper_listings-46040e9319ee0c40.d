/root/repo/target/debug/deps/paper_listings-46040e9319ee0c40.d: crates/minigo/tests/paper_listings.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_listings-46040e9319ee0c40.rmeta: crates/minigo/tests/paper_listings.rs Cargo.toml

crates/minigo/tests/paper_listings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
