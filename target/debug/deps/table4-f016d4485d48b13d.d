/root/repo/target/debug/deps/table4-f016d4485d48b13d.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-f016d4485d48b13d: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
