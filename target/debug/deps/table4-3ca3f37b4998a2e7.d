/root/repo/target/debug/deps/table4-3ca3f37b4998a2e7.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-3ca3f37b4998a2e7: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
