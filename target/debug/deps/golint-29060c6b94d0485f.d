/root/repo/target/debug/deps/golint-29060c6b94d0485f.d: crates/cli/src/bin/golint.rs Cargo.toml

/root/repo/target/debug/deps/libgolint-29060c6b94d0485f.rmeta: crates/cli/src/bin/golint.rs Cargo.toml

crates/cli/src/bin/golint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
