/root/repo/target/debug/deps/ablation_retry-a9bde19771978e3f.d: crates/bench/src/bin/ablation_retry.rs

/root/repo/target/debug/deps/ablation_retry-a9bde19771978e3f: crates/bench/src/bin/ablation_retry.rs

crates/bench/src/bin/ablation_retry.rs:
