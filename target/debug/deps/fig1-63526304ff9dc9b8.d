/root/repo/target/debug/deps/fig1-63526304ff9dc9b8.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-63526304ff9dc9b8: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
