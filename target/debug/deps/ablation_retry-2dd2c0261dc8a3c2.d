/root/repo/target/debug/deps/ablation_retry-2dd2c0261dc8a3c2.d: crates/bench/src/bin/ablation_retry.rs Cargo.toml

/root/repo/target/debug/deps/libablation_retry-2dd2c0261dc8a3c2.rmeta: crates/bench/src/bin/ablation_retry.rs Cargo.toml

crates/bench/src/bin/ablation_retry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
