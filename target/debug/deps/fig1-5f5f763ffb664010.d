/root/repo/target/debug/deps/fig1-5f5f763ffb664010.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-5f5f763ffb664010: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
