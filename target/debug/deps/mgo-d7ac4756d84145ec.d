/root/repo/target/debug/deps/mgo-d7ac4756d84145ec.d: crates/cli/src/bin/mgo.rs Cargo.toml

/root/repo/target/debug/deps/libmgo-d7ac4756d84145ec.rmeta: crates/cli/src/bin/mgo.rs Cargo.toml

crates/cli/src/bin/mgo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
