/root/repo/target/debug/deps/golint-82fe1a6a9cd274c2.d: crates/cli/src/bin/golint.rs

/root/repo/target/debug/deps/golint-82fe1a6a9cd274c2: crates/cli/src/bin/golint.rs

crates/cli/src/bin/golint.rs:
