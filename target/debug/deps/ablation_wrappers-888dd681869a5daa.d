/root/repo/target/debug/deps/ablation_wrappers-888dd681869a5daa.d: crates/bench/src/bin/ablation_wrappers.rs

/root/repo/target/debug/deps/ablation_wrappers-888dd681869a5daa: crates/bench/src/bin/ablation_wrappers.rs

crates/bench/src/bin/ablation_wrappers.rs:
