/root/repo/target/debug/deps/ablation_retry-f8f123c210de3890.d: crates/bench/src/bin/ablation_retry.rs Cargo.toml

/root/repo/target/debug/deps/libablation_retry-f8f123c210de3890.rmeta: crates/bench/src/bin/ablation_retry.rs Cargo.toml

crates/bench/src/bin/ablation_retry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
