/root/repo/target/debug/deps/paper_listings-29b4dc62d2bdc456.d: crates/minigo/tests/paper_listings.rs

/root/repo/target/debug/deps/paper_listings-29b4dc62d2bdc456: crates/minigo/tests/paper_listings.rs

crates/minigo/tests/paper_listings.rs:
