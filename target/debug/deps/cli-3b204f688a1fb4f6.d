/root/repo/target/debug/deps/cli-3b204f688a1fb4f6.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-3b204f688a1fb4f6.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_corpusgen=placeholder:corpusgen
# env-dep:CARGO_BIN_EXE_golint=placeholder:golint
# env-dep:CARGO_BIN_EXE_leakprof-cli=placeholder:leakprof-cli
# env-dep:CARGO_BIN_EXE_mgo=placeholder:mgo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
