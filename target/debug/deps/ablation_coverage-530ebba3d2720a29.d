/root/repo/target/debug/deps/ablation_coverage-530ebba3d2720a29.d: crates/bench/src/bin/ablation_coverage.rs

/root/repo/target/debug/deps/ablation_coverage-530ebba3d2720a29: crates/bench/src/bin/ablation_coverage.rs

crates/bench/src/bin/ablation_coverage.rs:
