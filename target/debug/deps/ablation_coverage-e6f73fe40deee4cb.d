/root/repo/target/debug/deps/ablation_coverage-e6f73fe40deee4cb.d: crates/bench/src/bin/ablation_coverage.rs

/root/repo/target/debug/deps/ablation_coverage-e6f73fe40deee4cb: crates/bench/src/bin/ablation_coverage.rs

crates/bench/src/bin/ablation_coverage.rs:
