/root/repo/target/debug/deps/leakprof_cli-c800c7e58d6622d8.d: crates/cli/src/bin/leakprof-cli.rs Cargo.toml

/root/repo/target/debug/deps/libleakprof_cli-c800c7e58d6622d8.rmeta: crates/cli/src/bin/leakprof-cli.rs Cargo.toml

crates/cli/src/bin/leakprof-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
