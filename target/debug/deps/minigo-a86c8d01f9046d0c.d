/root/repo/target/debug/deps/minigo-a86c8d01f9046d0c.d: crates/minigo/src/lib.rs crates/minigo/src/ast.rs crates/minigo/src/lower.rs crates/minigo/src/parser.rs crates/minigo/src/printer.rs crates/minigo/src/token.rs Cargo.toml

/root/repo/target/debug/deps/libminigo-a86c8d01f9046d0c.rmeta: crates/minigo/src/lib.rs crates/minigo/src/ast.rs crates/minigo/src/lower.rs crates/minigo/src/parser.rs crates/minigo/src/printer.rs crates/minigo/src/token.rs Cargo.toml

crates/minigo/src/lib.rs:
crates/minigo/src/ast.rs:
crates/minigo/src/lower.rs:
crates/minigo/src/parser.rs:
crates/minigo/src/printer.rs:
crates/minigo/src/token.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
