/root/repo/target/debug/deps/expr_proptests-6f3452907476bd44.d: crates/minigo/tests/expr_proptests.rs

/root/repo/target/debug/deps/expr_proptests-6f3452907476bd44: crates/minigo/tests/expr_proptests.rs

crates/minigo/tests/expr_proptests.rs:
