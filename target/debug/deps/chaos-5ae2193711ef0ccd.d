/root/repo/target/debug/deps/chaos-5ae2193711ef0ccd.d: crates/collector/tests/chaos.rs

/root/repo/target/debug/deps/chaos-5ae2193711ef0ccd: crates/collector/tests/chaos.rs

crates/collector/tests/chaos.rs:
