/root/repo/target/debug/deps/leakprofd-4a15d32450f093f5.d: crates/cli/src/bin/leakprofd.rs

/root/repo/target/debug/deps/leakprofd-4a15d32450f093f5: crates/cli/src/bin/leakprofd.rs

crates/cli/src/bin/leakprofd.rs:
