/root/repo/target/debug/deps/robustness-2713af9b57baf4a7.d: crates/staticlint/tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-2713af9b57baf4a7.rmeta: crates/staticlint/tests/robustness.rs Cargo.toml

crates/staticlint/tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
