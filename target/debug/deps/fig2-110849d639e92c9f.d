/root/repo/target/debug/deps/fig2-110849d639e92c9f.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-110849d639e92c9f: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
