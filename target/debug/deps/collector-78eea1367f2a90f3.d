/root/repo/target/debug/deps/collector-78eea1367f2a90f3.d: crates/collector/src/lib.rs crates/collector/src/breaker.rs crates/collector/src/chaos.rs crates/collector/src/daemon.rs crates/collector/src/demo.rs crates/collector/src/endpoints.rs crates/collector/src/history.rs crates/collector/src/http.rs crates/collector/src/ledger.rs crates/collector/src/scrape.rs crates/collector/src/snapshot.rs crates/collector/src/stats.rs

/root/repo/target/debug/deps/libcollector-78eea1367f2a90f3.rlib: crates/collector/src/lib.rs crates/collector/src/breaker.rs crates/collector/src/chaos.rs crates/collector/src/daemon.rs crates/collector/src/demo.rs crates/collector/src/endpoints.rs crates/collector/src/history.rs crates/collector/src/http.rs crates/collector/src/ledger.rs crates/collector/src/scrape.rs crates/collector/src/snapshot.rs crates/collector/src/stats.rs

/root/repo/target/debug/deps/libcollector-78eea1367f2a90f3.rmeta: crates/collector/src/lib.rs crates/collector/src/breaker.rs crates/collector/src/chaos.rs crates/collector/src/daemon.rs crates/collector/src/demo.rs crates/collector/src/endpoints.rs crates/collector/src/history.rs crates/collector/src/http.rs crates/collector/src/ledger.rs crates/collector/src/scrape.rs crates/collector/src/snapshot.rs crates/collector/src/stats.rs

crates/collector/src/lib.rs:
crates/collector/src/breaker.rs:
crates/collector/src/chaos.rs:
crates/collector/src/daemon.rs:
crates/collector/src/demo.rs:
crates/collector/src/endpoints.rs:
crates/collector/src/history.rs:
crates/collector/src/http.rs:
crates/collector/src/ledger.rs:
crates/collector/src/scrape.rs:
crates/collector/src/snapshot.rs:
crates/collector/src/stats.rs:
