/root/repo/target/debug/deps/breaker_cost-b9e8394e5a26cba0.d: crates/bench/src/bin/breaker_cost.rs Cargo.toml

/root/repo/target/debug/deps/libbreaker_cost-b9e8394e5a26cba0.rmeta: crates/bench/src/bin/breaker_cost.rs Cargo.toml

crates/bench/src/bin/breaker_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
