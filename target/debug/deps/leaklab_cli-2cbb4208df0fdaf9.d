/root/repo/target/debug/deps/leaklab_cli-2cbb4208df0fdaf9.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libleaklab_cli-2cbb4208df0fdaf9.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libleaklab_cli-2cbb4208df0fdaf9.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
