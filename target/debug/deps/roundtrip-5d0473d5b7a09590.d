/root/repo/target/debug/deps/roundtrip-5d0473d5b7a09590.d: crates/corpus/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-5d0473d5b7a09590: crates/corpus/tests/roundtrip.rs

crates/corpus/tests/roundtrip.rs:
