/root/repo/target/debug/deps/leakcore-b89901e33fc08cfb.d: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs

/root/repo/target/debug/deps/libleakcore-b89901e33fc08cfb.rlib: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs

/root/repo/target/debug/deps/libleakcore-b89901e33fc08cfb.rmeta: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs

crates/core/src/lib.rs:
crates/core/src/backtest.rs:
crates/core/src/ci.rs:
crates/core/src/evaluate.rs:
