/root/repo/target/debug/deps/goleak-e0ea705b925fee7d.d: crates/goleak/src/lib.rs crates/goleak/src/classify.rs crates/goleak/src/suppress.rs Cargo.toml

/root/repo/target/debug/deps/libgoleak-e0ea705b925fee7d.rmeta: crates/goleak/src/lib.rs crates/goleak/src/classify.rs crates/goleak/src/suppress.rs Cargo.toml

crates/goleak/src/lib.rs:
crates/goleak/src/classify.rs:
crates/goleak/src/suppress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
