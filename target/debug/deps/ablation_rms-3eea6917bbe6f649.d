/root/repo/target/debug/deps/ablation_rms-3eea6917bbe6f649.d: crates/bench/src/bin/ablation_rms.rs Cargo.toml

/root/repo/target/debug/deps/libablation_rms-3eea6917bbe6f649.rmeta: crates/bench/src/bin/ablation_rms.rs Cargo.toml

crates/bench/src/bin/ablation_rms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
