/root/repo/target/debug/deps/minigo-c2e3e787cc10bcc8.d: crates/minigo/src/lib.rs crates/minigo/src/ast.rs crates/minigo/src/lower.rs crates/minigo/src/parser.rs crates/minigo/src/printer.rs crates/minigo/src/token.rs Cargo.toml

/root/repo/target/debug/deps/libminigo-c2e3e787cc10bcc8.rmeta: crates/minigo/src/lib.rs crates/minigo/src/ast.rs crates/minigo/src/lower.rs crates/minigo/src/parser.rs crates/minigo/src/printer.rs crates/minigo/src/token.rs Cargo.toml

crates/minigo/src/lib.rs:
crates/minigo/src/ast.rs:
crates/minigo/src/lower.rs:
crates/minigo/src/parser.rs:
crates/minigo/src/printer.rs:
crates/minigo/src/token.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
