/root/repo/target/debug/deps/leakprof-130c0a1de16b98ac.d: crates/leakprof/src/lib.rs crates/leakprof/src/analyze.rs crates/leakprof/src/filter.rs crates/leakprof/src/history.rs crates/leakprof/src/report.rs crates/leakprof/src/signature.rs Cargo.toml

/root/repo/target/debug/deps/libleakprof-130c0a1de16b98ac.rmeta: crates/leakprof/src/lib.rs crates/leakprof/src/analyze.rs crates/leakprof/src/filter.rs crates/leakprof/src/history.rs crates/leakprof/src/report.rs crates/leakprof/src/signature.rs Cargo.toml

crates/leakprof/src/lib.rs:
crates/leakprof/src/analyze.rs:
crates/leakprof/src/filter.rs:
crates/leakprof/src/history.rs:
crates/leakprof/src/report.rs:
crates/leakprof/src/signature.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
