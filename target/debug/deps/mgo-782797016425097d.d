/root/repo/target/debug/deps/mgo-782797016425097d.d: crates/cli/src/bin/mgo.rs

/root/repo/target/debug/deps/mgo-782797016425097d: crates/cli/src/bin/mgo.rs

crates/cli/src/bin/mgo.rs:
