/root/repo/target/debug/deps/leakprof_cli-b9317f3e90ab12c7.d: crates/cli/src/bin/leakprof-cli.rs

/root/repo/target/debug/deps/leakprof_cli-b9317f3e90ab12c7: crates/cli/src/bin/leakprof-cli.rs

crates/cli/src/bin/leakprof-cli.rs:
