/root/repo/target/debug/deps/serde_json-0ed0a60eceb483d9.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-0ed0a60eceb483d9: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
