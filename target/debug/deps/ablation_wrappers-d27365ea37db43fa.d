/root/repo/target/debug/deps/ablation_wrappers-d27365ea37db43fa.d: crates/bench/src/bin/ablation_wrappers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_wrappers-d27365ea37db43fa.rmeta: crates/bench/src/bin/ablation_wrappers.rs Cargo.toml

crates/bench/src/bin/ablation_wrappers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
