/root/repo/target/debug/deps/fig5-7db3cf64ae8f189c.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-7db3cf64ae8f189c: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
