/root/repo/target/debug/deps/proptests-aca07a4d1406d923.d: crates/leakprof/tests/proptests.rs

/root/repo/target/debug/deps/proptests-aca07a4d1406d923: crates/leakprof/tests/proptests.rs

crates/leakprof/tests/proptests.rs:
