/root/repo/target/debug/deps/leaklab_cli-81fa9749b43e96aa.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/leaklab_cli-81fa9749b43e96aa: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
