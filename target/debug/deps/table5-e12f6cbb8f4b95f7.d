/root/repo/target/debug/deps/table5-e12f6cbb8f4b95f7.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-e12f6cbb8f4b95f7: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
