/root/repo/target/debug/deps/fleet-fce39b547ca049cc.d: crates/fleet/src/lib.rs crates/fleet/src/handlers.rs crates/fleet/src/sim.rs

/root/repo/target/debug/deps/fleet-fce39b547ca049cc: crates/fleet/src/lib.rs crates/fleet/src/handlers.rs crates/fleet/src/sim.rs

crates/fleet/src/lib.rs:
crates/fleet/src/handlers.rs:
crates/fleet/src/sim.rs:
