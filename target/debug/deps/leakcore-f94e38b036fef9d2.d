/root/repo/target/debug/deps/leakcore-f94e38b036fef9d2.d: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs crates/core/src/monitor.rs Cargo.toml

/root/repo/target/debug/deps/libleakcore-f94e38b036fef9d2.rmeta: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs crates/core/src/monitor.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/backtest.rs:
crates/core/src/ci.rs:
crates/core/src/evaluate.rs:
crates/core/src/monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
