/root/repo/target/debug/deps/leakcore-b2f48e181ce32122.d: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs

/root/repo/target/debug/deps/leakcore-b2f48e181ce32122: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs

crates/core/src/lib.rs:
crates/core/src/backtest.rs:
crates/core/src/ci.rs:
crates/core/src/evaluate.rs:
