/root/repo/target/debug/deps/determinism-cb900705e3bad714.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-cb900705e3bad714: tests/determinism.rs

tests/determinism.rs:
