/root/repo/target/debug/deps/leakprof-5c4feebee78cd5fb.d: crates/leakprof/src/lib.rs crates/leakprof/src/analyze.rs crates/leakprof/src/filter.rs crates/leakprof/src/history.rs crates/leakprof/src/report.rs crates/leakprof/src/signature.rs

/root/repo/target/debug/deps/leakprof-5c4feebee78cd5fb: crates/leakprof/src/lib.rs crates/leakprof/src/analyze.rs crates/leakprof/src/filter.rs crates/leakprof/src/history.rs crates/leakprof/src/report.rs crates/leakprof/src/signature.rs

crates/leakprof/src/lib.rs:
crates/leakprof/src/analyze.rs:
crates/leakprof/src/filter.rs:
crates/leakprof/src/history.rs:
crates/leakprof/src/report.rs:
crates/leakprof/src/signature.rs:
