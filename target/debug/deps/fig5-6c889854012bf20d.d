/root/repo/target/debug/deps/fig5-6c889854012bf20d.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-6c889854012bf20d: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
