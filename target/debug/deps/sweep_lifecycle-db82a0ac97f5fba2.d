/root/repo/target/debug/deps/sweep_lifecycle-db82a0ac97f5fba2.d: crates/fleet/tests/sweep_lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_lifecycle-db82a0ac97f5fba2.rmeta: crates/fleet/tests/sweep_lifecycle.rs Cargo.toml

crates/fleet/tests/sweep_lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
