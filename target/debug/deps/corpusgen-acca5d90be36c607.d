/root/repo/target/debug/deps/corpusgen-acca5d90be36c607.d: crates/cli/src/bin/corpusgen.rs Cargo.toml

/root/repo/target/debug/deps/libcorpusgen-acca5d90be36c607.rmeta: crates/cli/src/bin/corpusgen.rs Cargo.toml

crates/cli/src/bin/corpusgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
