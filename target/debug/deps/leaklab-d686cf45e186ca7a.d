/root/repo/target/debug/deps/leaklab-d686cf45e186ca7a.d: src/lib.rs

/root/repo/target/debug/deps/leaklab-d686cf45e186ca7a: src/lib.rs

src/lib.rs:
