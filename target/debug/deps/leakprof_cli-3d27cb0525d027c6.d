/root/repo/target/debug/deps/leakprof_cli-3d27cb0525d027c6.d: crates/cli/src/bin/leakprof-cli.rs

/root/repo/target/debug/deps/leakprof_cli-3d27cb0525d027c6: crates/cli/src/bin/leakprof-cli.rs

crates/cli/src/bin/leakprof-cli.rs:
