/root/repo/target/debug/deps/leakprofd-27b070064b07bd72.d: crates/cli/src/bin/leakprofd.rs Cargo.toml

/root/repo/target/debug/deps/libleakprofd-27b070064b07bd72.rmeta: crates/cli/src/bin/leakprofd.rs Cargo.toml

crates/cli/src/bin/leakprofd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
