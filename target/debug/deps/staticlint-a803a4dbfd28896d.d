/root/repo/target/debug/deps/staticlint-a803a4dbfd28896d.d: crates/staticlint/src/lib.rs crates/staticlint/src/absint.rs crates/staticlint/src/findings.rs crates/staticlint/src/modelcheck.rs crates/staticlint/src/pathcheck.rs crates/staticlint/src/rangeclose.rs crates/staticlint/src/skeleton.rs

/root/repo/target/debug/deps/staticlint-a803a4dbfd28896d: crates/staticlint/src/lib.rs crates/staticlint/src/absint.rs crates/staticlint/src/findings.rs crates/staticlint/src/modelcheck.rs crates/staticlint/src/pathcheck.rs crates/staticlint/src/rangeclose.rs crates/staticlint/src/skeleton.rs

crates/staticlint/src/lib.rs:
crates/staticlint/src/absint.rs:
crates/staticlint/src/findings.rs:
crates/staticlint/src/modelcheck.rs:
crates/staticlint/src/pathcheck.rs:
crates/staticlint/src/rangeclose.rs:
crates/staticlint/src/skeleton.rs:
