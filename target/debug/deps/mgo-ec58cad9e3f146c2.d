/root/repo/target/debug/deps/mgo-ec58cad9e3f146c2.d: crates/cli/src/bin/mgo.rs Cargo.toml

/root/repo/target/debug/deps/libmgo-ec58cad9e3f146c2.rmeta: crates/cli/src/bin/mgo.rs Cargo.toml

crates/cli/src/bin/mgo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
