/root/repo/target/debug/deps/gosim-235c7531943674b5.d: crates/gosim/src/lib.rs crates/gosim/src/ids.rs crates/gosim/src/loc.rs crates/gosim/src/proc.rs crates/gosim/src/runtime.rs crates/gosim/src/val.rs crates/gosim/src/profile.rs crates/gosim/src/rng.rs crates/gosim/src/script/mod.rs crates/gosim/src/script/build.rs crates/gosim/src/script/exec.rs crates/gosim/src/script/ir.rs Cargo.toml

/root/repo/target/debug/deps/libgosim-235c7531943674b5.rmeta: crates/gosim/src/lib.rs crates/gosim/src/ids.rs crates/gosim/src/loc.rs crates/gosim/src/proc.rs crates/gosim/src/runtime.rs crates/gosim/src/val.rs crates/gosim/src/profile.rs crates/gosim/src/rng.rs crates/gosim/src/script/mod.rs crates/gosim/src/script/build.rs crates/gosim/src/script/exec.rs crates/gosim/src/script/ir.rs Cargo.toml

crates/gosim/src/lib.rs:
crates/gosim/src/ids.rs:
crates/gosim/src/loc.rs:
crates/gosim/src/proc.rs:
crates/gosim/src/runtime.rs:
crates/gosim/src/val.rs:
crates/gosim/src/profile.rs:
crates/gosim/src/rng.rs:
crates/gosim/src/script/mod.rs:
crates/gosim/src/script/build.rs:
crates/gosim/src/script/exec.rs:
crates/gosim/src/script/ir.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
