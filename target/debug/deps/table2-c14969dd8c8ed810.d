/root/repo/target/debug/deps/table2-c14969dd8c8ed810.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-c14969dd8c8ed810: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
