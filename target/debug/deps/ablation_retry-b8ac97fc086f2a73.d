/root/repo/target/debug/deps/ablation_retry-b8ac97fc086f2a73.d: crates/bench/src/bin/ablation_retry.rs

/root/repo/target/debug/deps/ablation_retry-b8ac97fc086f2a73: crates/bench/src/bin/ablation_retry.rs

crates/bench/src/bin/ablation_retry.rs:
