/root/repo/target/debug/deps/breaker_cost-4100bc9702d9d10a.d: crates/bench/src/bin/breaker_cost.rs

/root/repo/target/debug/deps/breaker_cost-4100bc9702d9d10a: crates/bench/src/bin/breaker_cost.rs

crates/bench/src/bin/breaker_cost.rs:
