/root/repo/target/debug/deps/ablation_coverage-dfa504b60340ea03.d: crates/bench/src/bin/ablation_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libablation_coverage-dfa504b60340ea03.rmeta: crates/bench/src/bin/ablation_coverage.rs Cargo.toml

crates/bench/src/bin/ablation_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
