/root/repo/target/debug/deps/ablation_consensus-9cb87230c6f163ab.d: crates/bench/src/bin/ablation_consensus.rs

/root/repo/target/debug/deps/ablation_consensus-9cb87230c6f163ab: crates/bench/src/bin/ablation_consensus.rs

crates/bench/src/bin/ablation_consensus.rs:
