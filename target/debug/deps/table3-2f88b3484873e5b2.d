/root/repo/target/debug/deps/table3-2f88b3484873e5b2.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-2f88b3484873e5b2: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
