/root/repo/target/debug/deps/sweep_lifecycle-7650b18a300e73eb.d: crates/fleet/tests/sweep_lifecycle.rs

/root/repo/target/debug/deps/sweep_lifecycle-7650b18a300e73eb: crates/fleet/tests/sweep_lifecycle.rs

crates/fleet/tests/sweep_lifecycle.rs:
