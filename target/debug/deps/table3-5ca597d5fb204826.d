/root/repo/target/debug/deps/table3-5ca597d5fb204826.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-5ca597d5fb204826: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
