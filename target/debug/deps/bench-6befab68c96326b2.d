/root/repo/target/debug/deps/bench-6befab68c96326b2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-6befab68c96326b2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-6befab68c96326b2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
