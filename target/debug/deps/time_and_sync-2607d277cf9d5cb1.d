/root/repo/target/debug/deps/time_and_sync-2607d277cf9d5cb1.d: crates/gosim/tests/time_and_sync.rs

/root/repo/target/debug/deps/time_and_sync-2607d277cf9d5cb1: crates/gosim/tests/time_and_sync.rs

crates/gosim/tests/time_and_sync.rs:
