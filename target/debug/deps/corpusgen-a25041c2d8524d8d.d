/root/repo/target/debug/deps/corpusgen-a25041c2d8524d8d.d: crates/cli/src/bin/corpusgen.rs

/root/repo/target/debug/deps/corpusgen-a25041c2d8524d8d: crates/cli/src/bin/corpusgen.rs

crates/cli/src/bin/corpusgen.rs:
