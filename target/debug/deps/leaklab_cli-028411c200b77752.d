/root/repo/target/debug/deps/leaklab_cli-028411c200b77752.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libleaklab_cli-028411c200b77752.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
