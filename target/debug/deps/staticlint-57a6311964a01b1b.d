/root/repo/target/debug/deps/staticlint-57a6311964a01b1b.d: crates/staticlint/src/lib.rs crates/staticlint/src/absint.rs crates/staticlint/src/findings.rs crates/staticlint/src/modelcheck.rs crates/staticlint/src/pathcheck.rs crates/staticlint/src/rangeclose.rs crates/staticlint/src/skeleton.rs

/root/repo/target/debug/deps/libstaticlint-57a6311964a01b1b.rlib: crates/staticlint/src/lib.rs crates/staticlint/src/absint.rs crates/staticlint/src/findings.rs crates/staticlint/src/modelcheck.rs crates/staticlint/src/pathcheck.rs crates/staticlint/src/rangeclose.rs crates/staticlint/src/skeleton.rs

/root/repo/target/debug/deps/libstaticlint-57a6311964a01b1b.rmeta: crates/staticlint/src/lib.rs crates/staticlint/src/absint.rs crates/staticlint/src/findings.rs crates/staticlint/src/modelcheck.rs crates/staticlint/src/pathcheck.rs crates/staticlint/src/rangeclose.rs crates/staticlint/src/skeleton.rs

crates/staticlint/src/lib.rs:
crates/staticlint/src/absint.rs:
crates/staticlint/src/findings.rs:
crates/staticlint/src/modelcheck.rs:
crates/staticlint/src/pathcheck.rs:
crates/staticlint/src/rangeclose.rs:
crates/staticlint/src/skeleton.rs:
