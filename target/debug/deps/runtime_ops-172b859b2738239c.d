/root/repo/target/debug/deps/runtime_ops-172b859b2738239c.d: crates/bench/benches/runtime_ops.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_ops-172b859b2738239c.rmeta: crates/bench/benches/runtime_ops.rs Cargo.toml

crates/bench/benches/runtime_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
