/root/repo/target/debug/deps/leakprofd-4a350206dc2ad6f2.d: crates/cli/src/bin/leakprofd.rs Cargo.toml

/root/repo/target/debug/deps/libleakprofd-4a350206dc2ad6f2.rmeta: crates/cli/src/bin/leakprofd.rs Cargo.toml

crates/cli/src/bin/leakprofd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
