/root/repo/target/debug/deps/goleak-191487598c5a3214.d: crates/goleak/src/lib.rs crates/goleak/src/classify.rs crates/goleak/src/suppress.rs

/root/repo/target/debug/deps/goleak-191487598c5a3214: crates/goleak/src/lib.rs crates/goleak/src/classify.rs crates/goleak/src/suppress.rs

crates/goleak/src/lib.rs:
crates/goleak/src/classify.rs:
crates/goleak/src/suppress.rs:
