/root/repo/target/debug/deps/ablation_consensus-18a655d56b8f27da.d: crates/bench/src/bin/ablation_consensus.rs Cargo.toml

/root/repo/target/debug/deps/libablation_consensus-18a655d56b8f27da.rmeta: crates/bench/src/bin/ablation_consensus.rs Cargo.toml

crates/bench/src/bin/ablation_consensus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
