/root/repo/target/debug/deps/fleet-10bee2d4a5c19be8.d: crates/fleet/src/lib.rs crates/fleet/src/handlers.rs crates/fleet/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libfleet-10bee2d4a5c19be8.rmeta: crates/fleet/src/lib.rs crates/fleet/src/handlers.rs crates/fleet/src/sim.rs Cargo.toml

crates/fleet/src/lib.rs:
crates/fleet/src/handlers.rs:
crates/fleet/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
