/root/repo/target/debug/deps/leaklab_cli-32280b0275d2193e.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/leaklab_cli-32280b0275d2193e: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
