/root/repo/target/debug/deps/proptests-f3f108cdb222f6c1.d: crates/goleak/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f3f108cdb222f6c1: crates/goleak/tests/proptests.rs

crates/goleak/tests/proptests.rs:
