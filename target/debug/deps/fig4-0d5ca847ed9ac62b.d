/root/repo/target/debug/deps/fig4-0d5ca847ed9ac62b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-0d5ca847ed9ac62b: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
