/root/repo/target/debug/deps/staticlint-94ada42e9ba5f7d2.d: crates/staticlint/src/lib.rs crates/staticlint/src/absint.rs crates/staticlint/src/findings.rs crates/staticlint/src/modelcheck.rs crates/staticlint/src/pathcheck.rs crates/staticlint/src/rangeclose.rs crates/staticlint/src/skeleton.rs Cargo.toml

/root/repo/target/debug/deps/libstaticlint-94ada42e9ba5f7d2.rmeta: crates/staticlint/src/lib.rs crates/staticlint/src/absint.rs crates/staticlint/src/findings.rs crates/staticlint/src/modelcheck.rs crates/staticlint/src/pathcheck.rs crates/staticlint/src/rangeclose.rs crates/staticlint/src/skeleton.rs Cargo.toml

crates/staticlint/src/lib.rs:
crates/staticlint/src/absint.rs:
crates/staticlint/src/findings.rs:
crates/staticlint/src/modelcheck.rs:
crates/staticlint/src/pathcheck.rs:
crates/staticlint/src/rangeclose.rs:
crates/staticlint/src/skeleton.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
