/root/repo/target/debug/deps/roundtrip-8bf325a7ce0cb71c.d: crates/corpus/tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-8bf325a7ce0cb71c.rmeta: crates/corpus/tests/roundtrip.rs Cargo.toml

crates/corpus/tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
