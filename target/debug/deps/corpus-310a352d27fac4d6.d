/root/repo/target/debug/deps/corpus-310a352d27fac4d6.d: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/patterns.rs crates/corpus/src/stats.rs

/root/repo/target/debug/deps/corpus-310a352d27fac4d6: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/patterns.rs crates/corpus/src/stats.rs

crates/corpus/src/lib.rs:
crates/corpus/src/gen.rs:
crates/corpus/src/patterns.rs:
crates/corpus/src/stats.rs:
