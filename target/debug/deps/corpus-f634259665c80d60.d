/root/repo/target/debug/deps/corpus-f634259665c80d60.d: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/patterns.rs crates/corpus/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libcorpus-f634259665c80d60.rmeta: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/patterns.rs crates/corpus/src/stats.rs Cargo.toml

crates/corpus/src/lib.rs:
crates/corpus/src/gen.rs:
crates/corpus/src/patterns.rs:
crates/corpus/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
