/root/repo/target/debug/deps/ablation_rms-77667731596c0d0f.d: crates/bench/src/bin/ablation_rms.rs

/root/repo/target/debug/deps/ablation_rms-77667731596c0d0f: crates/bench/src/bin/ablation_rms.rs

crates/bench/src/bin/ablation_rms.rs:
