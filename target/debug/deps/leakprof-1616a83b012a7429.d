/root/repo/target/debug/deps/leakprof-1616a83b012a7429.d: crates/leakprof/src/lib.rs crates/leakprof/src/analyze.rs crates/leakprof/src/filter.rs crates/leakprof/src/history.rs crates/leakprof/src/report.rs crates/leakprof/src/signature.rs

/root/repo/target/debug/deps/libleakprof-1616a83b012a7429.rlib: crates/leakprof/src/lib.rs crates/leakprof/src/analyze.rs crates/leakprof/src/filter.rs crates/leakprof/src/history.rs crates/leakprof/src/report.rs crates/leakprof/src/signature.rs

/root/repo/target/debug/deps/libleakprof-1616a83b012a7429.rmeta: crates/leakprof/src/lib.rs crates/leakprof/src/analyze.rs crates/leakprof/src/filter.rs crates/leakprof/src/history.rs crates/leakprof/src/report.rs crates/leakprof/src/signature.rs

crates/leakprof/src/lib.rs:
crates/leakprof/src/analyze.rs:
crates/leakprof/src/filter.rs:
crates/leakprof/src/history.rs:
crates/leakprof/src/report.rs:
crates/leakprof/src/signature.rs:
