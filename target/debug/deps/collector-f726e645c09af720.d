/root/repo/target/debug/deps/collector-f726e645c09af720.d: crates/collector/src/lib.rs crates/collector/src/breaker.rs crates/collector/src/chaos.rs crates/collector/src/daemon.rs crates/collector/src/demo.rs crates/collector/src/endpoints.rs crates/collector/src/history.rs crates/collector/src/http.rs crates/collector/src/ledger.rs crates/collector/src/scrape.rs crates/collector/src/snapshot.rs crates/collector/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libcollector-f726e645c09af720.rmeta: crates/collector/src/lib.rs crates/collector/src/breaker.rs crates/collector/src/chaos.rs crates/collector/src/daemon.rs crates/collector/src/demo.rs crates/collector/src/endpoints.rs crates/collector/src/history.rs crates/collector/src/http.rs crates/collector/src/ledger.rs crates/collector/src/scrape.rs crates/collector/src/snapshot.rs crates/collector/src/stats.rs Cargo.toml

crates/collector/src/lib.rs:
crates/collector/src/breaker.rs:
crates/collector/src/chaos.rs:
crates/collector/src/daemon.rs:
crates/collector/src/demo.rs:
crates/collector/src/endpoints.rs:
crates/collector/src/history.rs:
crates/collector/src/http.rs:
crates/collector/src/ledger.rs:
crates/collector/src/scrape.rs:
crates/collector/src/snapshot.rs:
crates/collector/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
