/root/repo/target/debug/deps/goleak_overhead-8a37f47e89b3966c.d: crates/bench/benches/goleak_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libgoleak_overhead-8a37f47e89b3966c.rmeta: crates/bench/benches/goleak_overhead.rs Cargo.toml

crates/bench/benches/goleak_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
