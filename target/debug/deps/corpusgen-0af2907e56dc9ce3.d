/root/repo/target/debug/deps/corpusgen-0af2907e56dc9ce3.d: crates/cli/src/bin/corpusgen.rs Cargo.toml

/root/repo/target/debug/deps/libcorpusgen-0af2907e56dc9ce3.rmeta: crates/cli/src/bin/corpusgen.rs Cargo.toml

crates/cli/src/bin/corpusgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
