/root/repo/target/debug/deps/serde-d58a2e3622c67c3e.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-d58a2e3622c67c3e.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
