/root/repo/target/debug/deps/leakprof_throughput-c97963dc38853845.d: crates/bench/benches/leakprof_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libleakprof_throughput-c97963dc38853845.rmeta: crates/bench/benches/leakprof_throughput.rs Cargo.toml

crates/bench/benches/leakprof_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
