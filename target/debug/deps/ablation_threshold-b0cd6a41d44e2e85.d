/root/repo/target/debug/deps/ablation_threshold-b0cd6a41d44e2e85.d: crates/bench/src/bin/ablation_threshold.rs Cargo.toml

/root/repo/target/debug/deps/libablation_threshold-b0cd6a41d44e2e85.rmeta: crates/bench/src/bin/ablation_threshold.rs Cargo.toml

crates/bench/src/bin/ablation_threshold.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
