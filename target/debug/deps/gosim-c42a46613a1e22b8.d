/root/repo/target/debug/deps/gosim-c42a46613a1e22b8.d: crates/gosim/src/lib.rs crates/gosim/src/ids.rs crates/gosim/src/loc.rs crates/gosim/src/proc.rs crates/gosim/src/runtime.rs crates/gosim/src/val.rs crates/gosim/src/profile.rs crates/gosim/src/rng.rs crates/gosim/src/script/mod.rs crates/gosim/src/script/build.rs crates/gosim/src/script/exec.rs crates/gosim/src/script/ir.rs

/root/repo/target/debug/deps/gosim-c42a46613a1e22b8: crates/gosim/src/lib.rs crates/gosim/src/ids.rs crates/gosim/src/loc.rs crates/gosim/src/proc.rs crates/gosim/src/runtime.rs crates/gosim/src/val.rs crates/gosim/src/profile.rs crates/gosim/src/rng.rs crates/gosim/src/script/mod.rs crates/gosim/src/script/build.rs crates/gosim/src/script/exec.rs crates/gosim/src/script/ir.rs

crates/gosim/src/lib.rs:
crates/gosim/src/ids.rs:
crates/gosim/src/loc.rs:
crates/gosim/src/proc.rs:
crates/gosim/src/runtime.rs:
crates/gosim/src/val.rs:
crates/gosim/src/profile.rs:
crates/gosim/src/rng.rs:
crates/gosim/src/script/mod.rs:
crates/gosim/src/script/build.rs:
crates/gosim/src/script/exec.rs:
crates/gosim/src/script/ir.rs:
