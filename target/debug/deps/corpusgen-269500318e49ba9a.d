/root/repo/target/debug/deps/corpusgen-269500318e49ba9a.d: crates/cli/src/bin/corpusgen.rs

/root/repo/target/debug/deps/corpusgen-269500318e49ba9a: crates/cli/src/bin/corpusgen.rs

crates/cli/src/bin/corpusgen.rs:
