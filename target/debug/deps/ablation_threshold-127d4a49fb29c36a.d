/root/repo/target/debug/deps/ablation_threshold-127d4a49fb29c36a.d: crates/bench/src/bin/ablation_threshold.rs

/root/repo/target/debug/deps/ablation_threshold-127d4a49fb29c36a: crates/bench/src/bin/ablation_threshold.rs

crates/bench/src/bin/ablation_threshold.rs:
