/root/repo/target/debug/deps/gosim-dafc79041e9ad57e.d: crates/gosim/src/lib.rs crates/gosim/src/ids.rs crates/gosim/src/loc.rs crates/gosim/src/proc.rs crates/gosim/src/runtime.rs crates/gosim/src/val.rs crates/gosim/src/profile.rs crates/gosim/src/rng.rs crates/gosim/src/script/mod.rs crates/gosim/src/script/build.rs crates/gosim/src/script/exec.rs crates/gosim/src/script/ir.rs

/root/repo/target/debug/deps/libgosim-dafc79041e9ad57e.rlib: crates/gosim/src/lib.rs crates/gosim/src/ids.rs crates/gosim/src/loc.rs crates/gosim/src/proc.rs crates/gosim/src/runtime.rs crates/gosim/src/val.rs crates/gosim/src/profile.rs crates/gosim/src/rng.rs crates/gosim/src/script/mod.rs crates/gosim/src/script/build.rs crates/gosim/src/script/exec.rs crates/gosim/src/script/ir.rs

/root/repo/target/debug/deps/libgosim-dafc79041e9ad57e.rmeta: crates/gosim/src/lib.rs crates/gosim/src/ids.rs crates/gosim/src/loc.rs crates/gosim/src/proc.rs crates/gosim/src/runtime.rs crates/gosim/src/val.rs crates/gosim/src/profile.rs crates/gosim/src/rng.rs crates/gosim/src/script/mod.rs crates/gosim/src/script/build.rs crates/gosim/src/script/exec.rs crates/gosim/src/script/ir.rs

crates/gosim/src/lib.rs:
crates/gosim/src/ids.rs:
crates/gosim/src/loc.rs:
crates/gosim/src/proc.rs:
crates/gosim/src/runtime.rs:
crates/gosim/src/val.rs:
crates/gosim/src/profile.rs:
crates/gosim/src/rng.rs:
crates/gosim/src/script/mod.rs:
crates/gosim/src/script/build.rs:
crates/gosim/src/script/exec.rs:
crates/gosim/src/script/ir.rs:
