/root/repo/target/debug/deps/e2e-d911017b088095fb.d: crates/collector/tests/e2e.rs

/root/repo/target/debug/deps/e2e-d911017b088095fb: crates/collector/tests/e2e.rs

crates/collector/tests/e2e.rs:
