/root/repo/target/debug/deps/gosim-c652c6fed70afb3f.d: crates/gosim/src/lib.rs crates/gosim/src/ids.rs crates/gosim/src/loc.rs crates/gosim/src/proc.rs crates/gosim/src/runtime.rs crates/gosim/src/val.rs crates/gosim/src/profile.rs crates/gosim/src/rng.rs crates/gosim/src/script/mod.rs crates/gosim/src/script/build.rs crates/gosim/src/script/exec.rs crates/gosim/src/script/ir.rs Cargo.toml

/root/repo/target/debug/deps/libgosim-c652c6fed70afb3f.rmeta: crates/gosim/src/lib.rs crates/gosim/src/ids.rs crates/gosim/src/loc.rs crates/gosim/src/proc.rs crates/gosim/src/runtime.rs crates/gosim/src/val.rs crates/gosim/src/profile.rs crates/gosim/src/rng.rs crates/gosim/src/script/mod.rs crates/gosim/src/script/build.rs crates/gosim/src/script/exec.rs crates/gosim/src/script/ir.rs Cargo.toml

crates/gosim/src/lib.rs:
crates/gosim/src/ids.rs:
crates/gosim/src/loc.rs:
crates/gosim/src/proc.rs:
crates/gosim/src/runtime.rs:
crates/gosim/src/val.rs:
crates/gosim/src/profile.rs:
crates/gosim/src/rng.rs:
crates/gosim/src/script/mod.rs:
crates/gosim/src/script/build.rs:
crates/gosim/src/script/exec.rs:
crates/gosim/src/script/ir.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
