/root/repo/target/debug/deps/leaklab-4917b7052d4dda5f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libleaklab-4917b7052d4dda5f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
