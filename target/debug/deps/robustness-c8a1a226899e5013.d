/root/repo/target/debug/deps/robustness-c8a1a226899e5013.d: crates/staticlint/tests/robustness.rs

/root/repo/target/debug/deps/robustness-c8a1a226899e5013: crates/staticlint/tests/robustness.rs

crates/staticlint/tests/robustness.rs:
