/root/repo/target/debug/deps/minigo-6b12a370c4837239.d: crates/minigo/src/lib.rs crates/minigo/src/ast.rs crates/minigo/src/lower.rs crates/minigo/src/parser.rs crates/minigo/src/printer.rs crates/minigo/src/token.rs

/root/repo/target/debug/deps/minigo-6b12a370c4837239: crates/minigo/src/lib.rs crates/minigo/src/ast.rs crates/minigo/src/lower.rs crates/minigo/src/parser.rs crates/minigo/src/printer.rs crates/minigo/src/token.rs

crates/minigo/src/lib.rs:
crates/minigo/src/ast.rs:
crates/minigo/src/lower.rs:
crates/minigo/src/parser.rs:
crates/minigo/src/printer.rs:
crates/minigo/src/token.rs:
