/root/repo/target/debug/deps/goleak-74b025a398bee4ec.d: crates/goleak/src/lib.rs crates/goleak/src/classify.rs crates/goleak/src/suppress.rs

/root/repo/target/debug/deps/libgoleak-74b025a398bee4ec.rlib: crates/goleak/src/lib.rs crates/goleak/src/classify.rs crates/goleak/src/suppress.rs

/root/repo/target/debug/deps/libgoleak-74b025a398bee4ec.rmeta: crates/goleak/src/lib.rs crates/goleak/src/classify.rs crates/goleak/src/suppress.rs

crates/goleak/src/lib.rs:
crates/goleak/src/classify.rs:
crates/goleak/src/suppress.rs:
