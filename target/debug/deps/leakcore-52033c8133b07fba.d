/root/repo/target/debug/deps/leakcore-52033c8133b07fba.d: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs crates/core/src/monitor.rs

/root/repo/target/debug/deps/leakcore-52033c8133b07fba: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs crates/core/src/monitor.rs

crates/core/src/lib.rs:
crates/core/src/backtest.rs:
crates/core/src/ci.rs:
crates/core/src/evaluate.rs:
crates/core/src/monitor.rs:
