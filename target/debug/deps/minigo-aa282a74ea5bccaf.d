/root/repo/target/debug/deps/minigo-aa282a74ea5bccaf.d: crates/minigo/src/lib.rs crates/minigo/src/ast.rs crates/minigo/src/lower.rs crates/minigo/src/parser.rs crates/minigo/src/printer.rs crates/minigo/src/token.rs

/root/repo/target/debug/deps/libminigo-aa282a74ea5bccaf.rlib: crates/minigo/src/lib.rs crates/minigo/src/ast.rs crates/minigo/src/lower.rs crates/minigo/src/parser.rs crates/minigo/src/printer.rs crates/minigo/src/token.rs

/root/repo/target/debug/deps/libminigo-aa282a74ea5bccaf.rmeta: crates/minigo/src/lib.rs crates/minigo/src/ast.rs crates/minigo/src/lower.rs crates/minigo/src/parser.rs crates/minigo/src/printer.rs crates/minigo/src/token.rs

crates/minigo/src/lib.rs:
crates/minigo/src/ast.rs:
crates/minigo/src/lower.rs:
crates/minigo/src/parser.rs:
crates/minigo/src/printer.rs:
crates/minigo/src/token.rs:
