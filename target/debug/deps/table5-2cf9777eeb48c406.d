/root/repo/target/debug/deps/table5-2cf9777eeb48c406.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-2cf9777eeb48c406: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
