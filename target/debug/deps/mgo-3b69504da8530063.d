/root/repo/target/debug/deps/mgo-3b69504da8530063.d: crates/cli/src/bin/mgo.rs

/root/repo/target/debug/deps/mgo-3b69504da8530063: crates/cli/src/bin/mgo.rs

crates/cli/src/bin/mgo.rs:
