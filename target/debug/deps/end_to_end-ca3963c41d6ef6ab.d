/root/repo/target/debug/deps/end_to_end-ca3963c41d6ef6ab.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ca3963c41d6ef6ab: tests/end_to_end.rs

tests/end_to_end.rs:
