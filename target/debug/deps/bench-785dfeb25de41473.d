/root/repo/target/debug/deps/bench-785dfeb25de41473.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-785dfeb25de41473: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
