/root/repo/target/debug/deps/serde_json-c6e546b2dbd47231.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c6e546b2dbd47231.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c6e546b2dbd47231.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
