/root/repo/target/debug/deps/golint-eeeb0ca9ae479c22.d: crates/cli/src/bin/golint.rs

/root/repo/target/debug/deps/golint-eeeb0ca9ae479c22: crates/cli/src/bin/golint.rs

crates/cli/src/bin/golint.rs:
