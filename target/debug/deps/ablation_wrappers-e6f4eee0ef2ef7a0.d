/root/repo/target/debug/deps/ablation_wrappers-e6f4eee0ef2ef7a0.d: crates/bench/src/bin/ablation_wrappers.rs

/root/repo/target/debug/deps/ablation_wrappers-e6f4eee0ef2ef7a0: crates/bench/src/bin/ablation_wrappers.rs

crates/bench/src/bin/ablation_wrappers.rs:
