/root/repo/target/debug/deps/leaklab-c274e26ae469dece.d: src/lib.rs

/root/repo/target/debug/deps/leaklab-c274e26ae469dece: src/lib.rs

src/lib.rs:
