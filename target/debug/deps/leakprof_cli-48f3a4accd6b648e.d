/root/repo/target/debug/deps/leakprof_cli-48f3a4accd6b648e.d: crates/cli/src/bin/leakprof-cli.rs

/root/repo/target/debug/deps/leakprof_cli-48f3a4accd6b648e: crates/cli/src/bin/leakprof-cli.rs

crates/cli/src/bin/leakprof-cli.rs:
