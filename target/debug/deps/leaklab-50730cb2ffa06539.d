/root/repo/target/debug/deps/leaklab-50730cb2ffa06539.d: src/lib.rs

/root/repo/target/debug/deps/libleaklab-50730cb2ffa06539.rlib: src/lib.rs

/root/repo/target/debug/deps/libleaklab-50730cb2ffa06539.rmeta: src/lib.rs

src/lib.rs:
