/root/repo/target/debug/deps/table1-c2d8715e5cb3aa32.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c2d8715e5cb3aa32: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
