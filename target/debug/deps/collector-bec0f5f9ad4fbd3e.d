/root/repo/target/debug/deps/collector-bec0f5f9ad4fbd3e.d: crates/collector/src/lib.rs crates/collector/src/breaker.rs crates/collector/src/chaos.rs crates/collector/src/daemon.rs crates/collector/src/demo.rs crates/collector/src/endpoints.rs crates/collector/src/history.rs crates/collector/src/http.rs crates/collector/src/ledger.rs crates/collector/src/scrape.rs crates/collector/src/snapshot.rs crates/collector/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libcollector-bec0f5f9ad4fbd3e.rmeta: crates/collector/src/lib.rs crates/collector/src/breaker.rs crates/collector/src/chaos.rs crates/collector/src/daemon.rs crates/collector/src/demo.rs crates/collector/src/endpoints.rs crates/collector/src/history.rs crates/collector/src/http.rs crates/collector/src/ledger.rs crates/collector/src/scrape.rs crates/collector/src/snapshot.rs crates/collector/src/stats.rs Cargo.toml

crates/collector/src/lib.rs:
crates/collector/src/breaker.rs:
crates/collector/src/chaos.rs:
crates/collector/src/daemon.rs:
crates/collector/src/demo.rs:
crates/collector/src/endpoints.rs:
crates/collector/src/history.rs:
crates/collector/src/http.rs:
crates/collector/src/ledger.rs:
crates/collector/src/scrape.rs:
crates/collector/src/snapshot.rs:
crates/collector/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
