/root/repo/target/debug/deps/expr_proptests-f01995e3716b886e.d: crates/minigo/tests/expr_proptests.rs Cargo.toml

/root/repo/target/debug/deps/libexpr_proptests-f01995e3716b886e.rmeta: crates/minigo/tests/expr_proptests.rs Cargo.toml

crates/minigo/tests/expr_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
