/root/repo/target/debug/deps/serde-a7bfb6445379dc4c.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-a7bfb6445379dc4c: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
