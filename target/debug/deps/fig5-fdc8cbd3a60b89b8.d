/root/repo/target/debug/deps/fig5-fdc8cbd3a60b89b8.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-fdc8cbd3a60b89b8.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
