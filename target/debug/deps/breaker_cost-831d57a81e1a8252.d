/root/repo/target/debug/deps/breaker_cost-831d57a81e1a8252.d: crates/bench/src/bin/breaker_cost.rs Cargo.toml

/root/repo/target/debug/deps/libbreaker_cost-831d57a81e1a8252.rmeta: crates/bench/src/bin/breaker_cost.rs Cargo.toml

crates/bench/src/bin/breaker_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
