/root/repo/target/debug/deps/golint-9977db0240887def.d: crates/cli/src/bin/golint.rs

/root/repo/target/debug/deps/golint-9977db0240887def: crates/cli/src/bin/golint.rs

crates/cli/src/bin/golint.rs:
