/root/repo/target/debug/deps/leakprof_cli-ee547aa18d07a5d4.d: crates/cli/src/bin/leakprof-cli.rs

/root/repo/target/debug/deps/leakprof_cli-ee547aa18d07a5d4: crates/cli/src/bin/leakprof-cli.rs

crates/cli/src/bin/leakprof-cli.rs:
