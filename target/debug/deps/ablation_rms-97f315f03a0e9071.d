/root/repo/target/debug/deps/ablation_rms-97f315f03a0e9071.d: crates/bench/src/bin/ablation_rms.rs

/root/repo/target/debug/deps/ablation_rms-97f315f03a0e9071: crates/bench/src/bin/ablation_rms.rs

crates/bench/src/bin/ablation_rms.rs:
