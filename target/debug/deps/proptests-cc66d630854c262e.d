/root/repo/target/debug/deps/proptests-cc66d630854c262e.d: crates/gosim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-cc66d630854c262e: crates/gosim/tests/proptests.rs

crates/gosim/tests/proptests.rs:
