/root/repo/target/debug/deps/leakcore-4ff6147a2eca4a0d.d: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs crates/core/src/monitor.rs

/root/repo/target/debug/deps/libleakcore-4ff6147a2eca4a0d.rlib: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs crates/core/src/monitor.rs

/root/repo/target/debug/deps/libleakcore-4ff6147a2eca4a0d.rmeta: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs crates/core/src/monitor.rs

crates/core/src/lib.rs:
crates/core/src/backtest.rs:
crates/core/src/ci.rs:
crates/core/src/evaluate.rs:
crates/core/src/monitor.rs:
