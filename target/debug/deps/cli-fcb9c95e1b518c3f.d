/root/repo/target/debug/deps/cli-fcb9c95e1b518c3f.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-fcb9c95e1b518c3f: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_corpusgen=/root/repo/target/debug/corpusgen
# env-dep:CARGO_BIN_EXE_golint=/root/repo/target/debug/golint
# env-dep:CARGO_BIN_EXE_leakprof-cli=/root/repo/target/debug/leakprof-cli
# env-dep:CARGO_BIN_EXE_mgo=/root/repo/target/debug/mgo
