/root/repo/target/debug/deps/ablation_coverage-955d269fe41da4c1.d: crates/bench/src/bin/ablation_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libablation_coverage-955d269fe41da4c1.rmeta: crates/bench/src/bin/ablation_coverage.rs Cargo.toml

crates/bench/src/bin/ablation_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
