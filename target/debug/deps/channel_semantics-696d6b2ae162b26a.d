/root/repo/target/debug/deps/channel_semantics-696d6b2ae162b26a.d: crates/gosim/tests/channel_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libchannel_semantics-696d6b2ae162b26a.rmeta: crates/gosim/tests/channel_semantics.rs Cargo.toml

crates/gosim/tests/channel_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
