/root/repo/target/debug/deps/table1-0ae996553bd3cf47.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-0ae996553bd3cf47: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
