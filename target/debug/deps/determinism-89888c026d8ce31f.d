/root/repo/target/debug/deps/determinism-89888c026d8ce31f.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-89888c026d8ce31f: tests/determinism.rs

tests/determinism.rs:
