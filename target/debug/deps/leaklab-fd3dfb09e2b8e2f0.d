/root/repo/target/debug/deps/leaklab-fd3dfb09e2b8e2f0.d: src/lib.rs

/root/repo/target/debug/deps/libleaklab-fd3dfb09e2b8e2f0.rlib: src/lib.rs

/root/repo/target/debug/deps/libleaklab-fd3dfb09e2b8e2f0.rmeta: src/lib.rs

src/lib.rs:
