/root/repo/target/debug/deps/bench-adceee8b3eeddc37.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-adceee8b3eeddc37: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
