/root/repo/target/debug/deps/fig6-8bf3f91bb480cd34.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-8bf3f91bb480cd34: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
