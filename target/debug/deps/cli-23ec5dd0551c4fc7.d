/root/repo/target/debug/deps/cli-23ec5dd0551c4fc7.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-23ec5dd0551c4fc7: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_corpusgen=/root/repo/target/debug/corpusgen
# env-dep:CARGO_BIN_EXE_golint=/root/repo/target/debug/golint
# env-dep:CARGO_BIN_EXE_leakprof-cli=/root/repo/target/debug/leakprof-cli
# env-dep:CARGO_BIN_EXE_mgo=/root/repo/target/debug/mgo
