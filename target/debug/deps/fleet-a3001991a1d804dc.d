/root/repo/target/debug/deps/fleet-a3001991a1d804dc.d: crates/fleet/src/lib.rs crates/fleet/src/handlers.rs crates/fleet/src/sim.rs

/root/repo/target/debug/deps/libfleet-a3001991a1d804dc.rlib: crates/fleet/src/lib.rs crates/fleet/src/handlers.rs crates/fleet/src/sim.rs

/root/repo/target/debug/deps/libfleet-a3001991a1d804dc.rmeta: crates/fleet/src/lib.rs crates/fleet/src/handlers.rs crates/fleet/src/sim.rs

crates/fleet/src/lib.rs:
crates/fleet/src/handlers.rs:
crates/fleet/src/sim.rs:
