/root/repo/target/debug/deps/serde-55c8f2e8e4a75209.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-55c8f2e8e4a75209.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-55c8f2e8e4a75209.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
