/root/repo/target/debug/deps/scrape_throughput-6b3103138949b75a.d: crates/bench/benches/scrape_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libscrape_throughput-6b3103138949b75a.rmeta: crates/bench/benches/scrape_throughput.rs Cargo.toml

crates/bench/benches/scrape_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
