/root/repo/target/debug/deps/corpus-0ce590d344f6076c.d: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/patterns.rs crates/corpus/src/stats.rs

/root/repo/target/debug/deps/libcorpus-0ce590d344f6076c.rlib: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/patterns.rs crates/corpus/src/stats.rs

/root/repo/target/debug/deps/libcorpus-0ce590d344f6076c.rmeta: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/patterns.rs crates/corpus/src/stats.rs

crates/corpus/src/lib.rs:
crates/corpus/src/gen.rs:
crates/corpus/src/patterns.rs:
crates/corpus/src/stats.rs:
