/root/repo/target/debug/deps/fig2-cb1147b66b24a287.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-cb1147b66b24a287: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
