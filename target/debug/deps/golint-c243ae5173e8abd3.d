/root/repo/target/debug/deps/golint-c243ae5173e8abd3.d: crates/cli/src/bin/golint.rs Cargo.toml

/root/repo/target/debug/deps/libgolint-c243ae5173e8abd3.rmeta: crates/cli/src/bin/golint.rs Cargo.toml

crates/cli/src/bin/golint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
