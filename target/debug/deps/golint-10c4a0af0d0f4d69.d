/root/repo/target/debug/deps/golint-10c4a0af0d0f4d69.d: crates/cli/src/bin/golint.rs

/root/repo/target/debug/deps/golint-10c4a0af0d0f4d69: crates/cli/src/bin/golint.rs

crates/cli/src/bin/golint.rs:
