/root/repo/target/debug/deps/executor_edge_cases-1883fb1bcdb8fc21.d: crates/gosim/tests/executor_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libexecutor_edge_cases-1883fb1bcdb8fc21.rmeta: crates/gosim/tests/executor_edge_cases.rs Cargo.toml

crates/gosim/tests/executor_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
