/root/repo/target/debug/deps/proptests-fdb03f52fce7fee2.d: crates/goleak/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-fdb03f52fce7fee2.rmeta: crates/goleak/tests/proptests.rs Cargo.toml

crates/goleak/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
