/root/repo/target/debug/deps/corpusgen-1e982d3220e9f2be.d: crates/cli/src/bin/corpusgen.rs

/root/repo/target/debug/deps/corpusgen-1e982d3220e9f2be: crates/cli/src/bin/corpusgen.rs

crates/cli/src/bin/corpusgen.rs:
