/root/repo/target/debug/deps/leaklab-8a90769b6391d7bc.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libleaklab-8a90769b6391d7bc.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
