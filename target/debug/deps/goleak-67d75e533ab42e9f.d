/root/repo/target/debug/deps/goleak-67d75e533ab42e9f.d: crates/goleak/src/lib.rs crates/goleak/src/classify.rs crates/goleak/src/suppress.rs Cargo.toml

/root/repo/target/debug/deps/libgoleak-67d75e533ab42e9f.rmeta: crates/goleak/src/lib.rs crates/goleak/src/classify.rs crates/goleak/src/suppress.rs Cargo.toml

crates/goleak/src/lib.rs:
crates/goleak/src/classify.rs:
crates/goleak/src/suppress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
