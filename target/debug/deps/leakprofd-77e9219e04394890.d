/root/repo/target/debug/deps/leakprofd-77e9219e04394890.d: crates/cli/src/bin/leakprofd.rs

/root/repo/target/debug/deps/leakprofd-77e9219e04394890: crates/cli/src/bin/leakprofd.rs

crates/cli/src/bin/leakprofd.rs:
