/root/repo/target/debug/deps/corpusgen-4502e6ab1455f867.d: crates/cli/src/bin/corpusgen.rs

/root/repo/target/debug/deps/corpusgen-4502e6ab1455f867: crates/cli/src/bin/corpusgen.rs

crates/cli/src/bin/corpusgen.rs:
