/root/repo/target/debug/deps/channel_semantics-d918e6845180bc43.d: crates/gosim/tests/channel_semantics.rs

/root/repo/target/debug/deps/channel_semantics-d918e6845180bc43: crates/gosim/tests/channel_semantics.rs

crates/gosim/tests/channel_semantics.rs:
