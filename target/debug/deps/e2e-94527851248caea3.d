/root/repo/target/debug/deps/e2e-94527851248caea3.d: crates/collector/tests/e2e.rs Cargo.toml

/root/repo/target/debug/deps/libe2e-94527851248caea3.rmeta: crates/collector/tests/e2e.rs Cargo.toml

crates/collector/tests/e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
