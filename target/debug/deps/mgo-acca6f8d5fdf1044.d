/root/repo/target/debug/deps/mgo-acca6f8d5fdf1044.d: crates/cli/src/bin/mgo.rs

/root/repo/target/debug/deps/mgo-acca6f8d5fdf1044: crates/cli/src/bin/mgo.rs

crates/cli/src/bin/mgo.rs:
