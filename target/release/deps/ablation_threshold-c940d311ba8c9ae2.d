/root/repo/target/release/deps/ablation_threshold-c940d311ba8c9ae2.d: crates/bench/src/bin/ablation_threshold.rs

/root/repo/target/release/deps/ablation_threshold-c940d311ba8c9ae2: crates/bench/src/bin/ablation_threshold.rs

crates/bench/src/bin/ablation_threshold.rs:
