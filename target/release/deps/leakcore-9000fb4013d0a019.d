/root/repo/target/release/deps/leakcore-9000fb4013d0a019.d: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs crates/core/src/monitor.rs

/root/repo/target/release/deps/libleakcore-9000fb4013d0a019.rlib: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs crates/core/src/monitor.rs

/root/repo/target/release/deps/libleakcore-9000fb4013d0a019.rmeta: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs crates/core/src/monitor.rs

crates/core/src/lib.rs:
crates/core/src/backtest.rs:
crates/core/src/ci.rs:
crates/core/src/evaluate.rs:
crates/core/src/monitor.rs:
