/root/repo/target/release/deps/ablation_wrappers-965e63721a5d1d94.d: crates/bench/src/bin/ablation_wrappers.rs

/root/repo/target/release/deps/ablation_wrappers-965e63721a5d1d94: crates/bench/src/bin/ablation_wrappers.rs

crates/bench/src/bin/ablation_wrappers.rs:
