/root/repo/target/release/deps/fig4-568e5603d1644b03.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-568e5603d1644b03: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
