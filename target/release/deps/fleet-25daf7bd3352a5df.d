/root/repo/target/release/deps/fleet-25daf7bd3352a5df.d: crates/fleet/src/lib.rs crates/fleet/src/handlers.rs crates/fleet/src/sim.rs

/root/repo/target/release/deps/libfleet-25daf7bd3352a5df.rlib: crates/fleet/src/lib.rs crates/fleet/src/handlers.rs crates/fleet/src/sim.rs

/root/repo/target/release/deps/libfleet-25daf7bd3352a5df.rmeta: crates/fleet/src/lib.rs crates/fleet/src/handlers.rs crates/fleet/src/sim.rs

crates/fleet/src/lib.rs:
crates/fleet/src/handlers.rs:
crates/fleet/src/sim.rs:
