/root/repo/target/release/deps/serde-caf7cf0c2bc3d3e6.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-caf7cf0c2bc3d3e6.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-caf7cf0c2bc3d3e6.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
