/root/repo/target/release/deps/ablation_consensus-52943dbb5a4db460.d: crates/bench/src/bin/ablation_consensus.rs

/root/repo/target/release/deps/ablation_consensus-52943dbb5a4db460: crates/bench/src/bin/ablation_consensus.rs

crates/bench/src/bin/ablation_consensus.rs:
