/root/repo/target/release/deps/scrape_throughput-95bffb1d29a3745b.d: crates/bench/benches/scrape_throughput.rs

/root/repo/target/release/deps/scrape_throughput-95bffb1d29a3745b: crates/bench/benches/scrape_throughput.rs

crates/bench/benches/scrape_throughput.rs:
