/root/repo/target/release/deps/fig1-1f5912f97fe87a3a.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-1f5912f97fe87a3a: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
