/root/repo/target/release/deps/leakprofd-7524f230514d1b3e.d: crates/cli/src/bin/leakprofd.rs

/root/repo/target/release/deps/leakprofd-7524f230514d1b3e: crates/cli/src/bin/leakprofd.rs

crates/cli/src/bin/leakprofd.rs:
