/root/repo/target/release/deps/table4-266e3db6e9f4e6ad.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-266e3db6e9f4e6ad: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
