/root/repo/target/release/deps/leaklab_cli-80484b6e1ebd85e9.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libleaklab_cli-80484b6e1ebd85e9.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libleaklab_cli-80484b6e1ebd85e9.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
