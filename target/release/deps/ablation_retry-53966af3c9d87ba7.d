/root/repo/target/release/deps/ablation_retry-53966af3c9d87ba7.d: crates/bench/src/bin/ablation_retry.rs

/root/repo/target/release/deps/ablation_retry-53966af3c9d87ba7: crates/bench/src/bin/ablation_retry.rs

crates/bench/src/bin/ablation_retry.rs:
