/root/repo/target/release/deps/fig6-59f7f18bb973edbb.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-59f7f18bb973edbb: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
