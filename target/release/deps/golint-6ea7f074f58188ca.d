/root/repo/target/release/deps/golint-6ea7f074f58188ca.d: crates/cli/src/bin/golint.rs

/root/repo/target/release/deps/golint-6ea7f074f58188ca: crates/cli/src/bin/golint.rs

crates/cli/src/bin/golint.rs:
