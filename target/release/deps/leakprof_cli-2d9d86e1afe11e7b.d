/root/repo/target/release/deps/leakprof_cli-2d9d86e1afe11e7b.d: crates/cli/src/bin/leakprof-cli.rs

/root/repo/target/release/deps/leakprof_cli-2d9d86e1afe11e7b: crates/cli/src/bin/leakprof-cli.rs

crates/cli/src/bin/leakprof-cli.rs:
