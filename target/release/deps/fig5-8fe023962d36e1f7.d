/root/repo/target/release/deps/fig5-8fe023962d36e1f7.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-8fe023962d36e1f7: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
