/root/repo/target/release/deps/gosim-c704fcd8af19581f.d: crates/gosim/src/lib.rs crates/gosim/src/ids.rs crates/gosim/src/loc.rs crates/gosim/src/proc.rs crates/gosim/src/runtime.rs crates/gosim/src/val.rs crates/gosim/src/profile.rs crates/gosim/src/rng.rs crates/gosim/src/script/mod.rs crates/gosim/src/script/build.rs crates/gosim/src/script/exec.rs crates/gosim/src/script/ir.rs

/root/repo/target/release/deps/libgosim-c704fcd8af19581f.rlib: crates/gosim/src/lib.rs crates/gosim/src/ids.rs crates/gosim/src/loc.rs crates/gosim/src/proc.rs crates/gosim/src/runtime.rs crates/gosim/src/val.rs crates/gosim/src/profile.rs crates/gosim/src/rng.rs crates/gosim/src/script/mod.rs crates/gosim/src/script/build.rs crates/gosim/src/script/exec.rs crates/gosim/src/script/ir.rs

/root/repo/target/release/deps/libgosim-c704fcd8af19581f.rmeta: crates/gosim/src/lib.rs crates/gosim/src/ids.rs crates/gosim/src/loc.rs crates/gosim/src/proc.rs crates/gosim/src/runtime.rs crates/gosim/src/val.rs crates/gosim/src/profile.rs crates/gosim/src/rng.rs crates/gosim/src/script/mod.rs crates/gosim/src/script/build.rs crates/gosim/src/script/exec.rs crates/gosim/src/script/ir.rs

crates/gosim/src/lib.rs:
crates/gosim/src/ids.rs:
crates/gosim/src/loc.rs:
crates/gosim/src/proc.rs:
crates/gosim/src/runtime.rs:
crates/gosim/src/val.rs:
crates/gosim/src/profile.rs:
crates/gosim/src/rng.rs:
crates/gosim/src/script/mod.rs:
crates/gosim/src/script/build.rs:
crates/gosim/src/script/exec.rs:
crates/gosim/src/script/ir.rs:
