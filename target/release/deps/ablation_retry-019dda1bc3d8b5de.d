/root/repo/target/release/deps/ablation_retry-019dda1bc3d8b5de.d: crates/bench/src/bin/ablation_retry.rs

/root/repo/target/release/deps/ablation_retry-019dda1bc3d8b5de: crates/bench/src/bin/ablation_retry.rs

crates/bench/src/bin/ablation_retry.rs:
