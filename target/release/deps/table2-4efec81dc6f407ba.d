/root/repo/target/release/deps/table2-4efec81dc6f407ba.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-4efec81dc6f407ba: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
