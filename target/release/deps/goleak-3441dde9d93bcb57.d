/root/repo/target/release/deps/goleak-3441dde9d93bcb57.d: crates/goleak/src/lib.rs crates/goleak/src/classify.rs crates/goleak/src/suppress.rs

/root/repo/target/release/deps/libgoleak-3441dde9d93bcb57.rlib: crates/goleak/src/lib.rs crates/goleak/src/classify.rs crates/goleak/src/suppress.rs

/root/repo/target/release/deps/libgoleak-3441dde9d93bcb57.rmeta: crates/goleak/src/lib.rs crates/goleak/src/classify.rs crates/goleak/src/suppress.rs

crates/goleak/src/lib.rs:
crates/goleak/src/classify.rs:
crates/goleak/src/suppress.rs:
