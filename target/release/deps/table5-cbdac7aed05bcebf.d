/root/repo/target/release/deps/table5-cbdac7aed05bcebf.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-cbdac7aed05bcebf: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
