/root/repo/target/release/deps/corpusgen-2927f2284f2b43ce.d: crates/cli/src/bin/corpusgen.rs

/root/repo/target/release/deps/corpusgen-2927f2284f2b43ce: crates/cli/src/bin/corpusgen.rs

crates/cli/src/bin/corpusgen.rs:
