/root/repo/target/release/deps/table1-24ee0a6a5985b878.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-24ee0a6a5985b878: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
