/root/repo/target/release/deps/fig2-22c26608c9d1fa9e.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-22c26608c9d1fa9e: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
