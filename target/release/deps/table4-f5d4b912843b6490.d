/root/repo/target/release/deps/table4-f5d4b912843b6490.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-f5d4b912843b6490: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
