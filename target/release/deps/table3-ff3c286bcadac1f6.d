/root/repo/target/release/deps/table3-ff3c286bcadac1f6.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-ff3c286bcadac1f6: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
