/root/repo/target/release/deps/ablation_wrappers-880605f7ad9c2977.d: crates/bench/src/bin/ablation_wrappers.rs

/root/repo/target/release/deps/ablation_wrappers-880605f7ad9c2977: crates/bench/src/bin/ablation_wrappers.rs

crates/bench/src/bin/ablation_wrappers.rs:
