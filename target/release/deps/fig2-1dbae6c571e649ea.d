/root/repo/target/release/deps/fig2-1dbae6c571e649ea.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-1dbae6c571e649ea: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
