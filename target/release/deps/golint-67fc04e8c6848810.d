/root/repo/target/release/deps/golint-67fc04e8c6848810.d: crates/cli/src/bin/golint.rs

/root/repo/target/release/deps/golint-67fc04e8c6848810: crates/cli/src/bin/golint.rs

crates/cli/src/bin/golint.rs:
