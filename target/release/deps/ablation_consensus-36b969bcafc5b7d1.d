/root/repo/target/release/deps/ablation_consensus-36b969bcafc5b7d1.d: crates/bench/src/bin/ablation_consensus.rs

/root/repo/target/release/deps/ablation_consensus-36b969bcafc5b7d1: crates/bench/src/bin/ablation_consensus.rs

crates/bench/src/bin/ablation_consensus.rs:
