/root/repo/target/release/deps/leakprof-60861f5e6ff8190d.d: crates/leakprof/src/lib.rs crates/leakprof/src/analyze.rs crates/leakprof/src/filter.rs crates/leakprof/src/history.rs crates/leakprof/src/report.rs crates/leakprof/src/signature.rs

/root/repo/target/release/deps/libleakprof-60861f5e6ff8190d.rlib: crates/leakprof/src/lib.rs crates/leakprof/src/analyze.rs crates/leakprof/src/filter.rs crates/leakprof/src/history.rs crates/leakprof/src/report.rs crates/leakprof/src/signature.rs

/root/repo/target/release/deps/libleakprof-60861f5e6ff8190d.rmeta: crates/leakprof/src/lib.rs crates/leakprof/src/analyze.rs crates/leakprof/src/filter.rs crates/leakprof/src/history.rs crates/leakprof/src/report.rs crates/leakprof/src/signature.rs

crates/leakprof/src/lib.rs:
crates/leakprof/src/analyze.rs:
crates/leakprof/src/filter.rs:
crates/leakprof/src/history.rs:
crates/leakprof/src/report.rs:
crates/leakprof/src/signature.rs:
