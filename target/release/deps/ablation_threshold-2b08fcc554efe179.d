/root/repo/target/release/deps/ablation_threshold-2b08fcc554efe179.d: crates/bench/src/bin/ablation_threshold.rs

/root/repo/target/release/deps/ablation_threshold-2b08fcc554efe179: crates/bench/src/bin/ablation_threshold.rs

crates/bench/src/bin/ablation_threshold.rs:
