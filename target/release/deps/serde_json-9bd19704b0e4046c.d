/root/repo/target/release/deps/serde_json-9bd19704b0e4046c.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-9bd19704b0e4046c.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-9bd19704b0e4046c.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
