/root/repo/target/release/deps/staticlint-61783dfe9dda90d9.d: crates/staticlint/src/lib.rs crates/staticlint/src/absint.rs crates/staticlint/src/findings.rs crates/staticlint/src/modelcheck.rs crates/staticlint/src/pathcheck.rs crates/staticlint/src/rangeclose.rs crates/staticlint/src/skeleton.rs

/root/repo/target/release/deps/libstaticlint-61783dfe9dda90d9.rlib: crates/staticlint/src/lib.rs crates/staticlint/src/absint.rs crates/staticlint/src/findings.rs crates/staticlint/src/modelcheck.rs crates/staticlint/src/pathcheck.rs crates/staticlint/src/rangeclose.rs crates/staticlint/src/skeleton.rs

/root/repo/target/release/deps/libstaticlint-61783dfe9dda90d9.rmeta: crates/staticlint/src/lib.rs crates/staticlint/src/absint.rs crates/staticlint/src/findings.rs crates/staticlint/src/modelcheck.rs crates/staticlint/src/pathcheck.rs crates/staticlint/src/rangeclose.rs crates/staticlint/src/skeleton.rs

crates/staticlint/src/lib.rs:
crates/staticlint/src/absint.rs:
crates/staticlint/src/findings.rs:
crates/staticlint/src/modelcheck.rs:
crates/staticlint/src/pathcheck.rs:
crates/staticlint/src/rangeclose.rs:
crates/staticlint/src/skeleton.rs:
