/root/repo/target/release/deps/mgo-fe1f67decb8a9e77.d: crates/cli/src/bin/mgo.rs

/root/repo/target/release/deps/mgo-fe1f67decb8a9e77: crates/cli/src/bin/mgo.rs

crates/cli/src/bin/mgo.rs:
