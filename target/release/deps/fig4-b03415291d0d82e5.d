/root/repo/target/release/deps/fig4-b03415291d0d82e5.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-b03415291d0d82e5: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
