/root/repo/target/release/deps/leaklab-8696cb69d7811b7b.d: src/lib.rs

/root/repo/target/release/deps/libleaklab-8696cb69d7811b7b.rlib: src/lib.rs

/root/repo/target/release/deps/libleaklab-8696cb69d7811b7b.rmeta: src/lib.rs

src/lib.rs:
