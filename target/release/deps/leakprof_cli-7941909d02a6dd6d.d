/root/repo/target/release/deps/leakprof_cli-7941909d02a6dd6d.d: crates/cli/src/bin/leakprof-cli.rs

/root/repo/target/release/deps/leakprof_cli-7941909d02a6dd6d: crates/cli/src/bin/leakprof-cli.rs

crates/cli/src/bin/leakprof-cli.rs:
