/root/repo/target/release/deps/leaklab-935b10dfa0c68ed6.d: src/lib.rs

/root/repo/target/release/deps/libleaklab-935b10dfa0c68ed6.rlib: src/lib.rs

/root/repo/target/release/deps/libleaklab-935b10dfa0c68ed6.rmeta: src/lib.rs

src/lib.rs:
