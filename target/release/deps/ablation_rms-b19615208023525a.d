/root/repo/target/release/deps/ablation_rms-b19615208023525a.d: crates/bench/src/bin/ablation_rms.rs

/root/repo/target/release/deps/ablation_rms-b19615208023525a: crates/bench/src/bin/ablation_rms.rs

crates/bench/src/bin/ablation_rms.rs:
