/root/repo/target/release/deps/bench-41ab5bebbdee5062.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-41ab5bebbdee5062.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-41ab5bebbdee5062.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
