/root/repo/target/release/deps/fig1-cecd14be31cfdb37.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-cecd14be31cfdb37: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
