/root/repo/target/release/deps/bench-4a3e573beda5fa4e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-4a3e573beda5fa4e.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-4a3e573beda5fa4e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
