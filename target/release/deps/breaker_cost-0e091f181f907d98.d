/root/repo/target/release/deps/breaker_cost-0e091f181f907d98.d: crates/bench/src/bin/breaker_cost.rs

/root/repo/target/release/deps/breaker_cost-0e091f181f907d98: crates/bench/src/bin/breaker_cost.rs

crates/bench/src/bin/breaker_cost.rs:
