/root/repo/target/release/deps/ablation_coverage-3c7911ab0ced70a1.d: crates/bench/src/bin/ablation_coverage.rs

/root/repo/target/release/deps/ablation_coverage-3c7911ab0ced70a1: crates/bench/src/bin/ablation_coverage.rs

crates/bench/src/bin/ablation_coverage.rs:
