/root/repo/target/release/deps/table5-e9aaa49f9a4471cc.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-e9aaa49f9a4471cc: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
