/root/repo/target/release/deps/fig5-53d63bb12592c593.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-53d63bb12592c593: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
