/root/repo/target/release/deps/minigo-3f29f9a0718319f6.d: crates/minigo/src/lib.rs crates/minigo/src/ast.rs crates/minigo/src/lower.rs crates/minigo/src/parser.rs crates/minigo/src/printer.rs crates/minigo/src/token.rs

/root/repo/target/release/deps/libminigo-3f29f9a0718319f6.rlib: crates/minigo/src/lib.rs crates/minigo/src/ast.rs crates/minigo/src/lower.rs crates/minigo/src/parser.rs crates/minigo/src/printer.rs crates/minigo/src/token.rs

/root/repo/target/release/deps/libminigo-3f29f9a0718319f6.rmeta: crates/minigo/src/lib.rs crates/minigo/src/ast.rs crates/minigo/src/lower.rs crates/minigo/src/parser.rs crates/minigo/src/printer.rs crates/minigo/src/token.rs

crates/minigo/src/lib.rs:
crates/minigo/src/ast.rs:
crates/minigo/src/lower.rs:
crates/minigo/src/parser.rs:
crates/minigo/src/printer.rs:
crates/minigo/src/token.rs:
