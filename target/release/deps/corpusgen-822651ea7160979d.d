/root/repo/target/release/deps/corpusgen-822651ea7160979d.d: crates/cli/src/bin/corpusgen.rs

/root/repo/target/release/deps/corpusgen-822651ea7160979d: crates/cli/src/bin/corpusgen.rs

crates/cli/src/bin/corpusgen.rs:
