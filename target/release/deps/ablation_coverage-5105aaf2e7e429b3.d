/root/repo/target/release/deps/ablation_coverage-5105aaf2e7e429b3.d: crates/bench/src/bin/ablation_coverage.rs

/root/repo/target/release/deps/ablation_coverage-5105aaf2e7e429b3: crates/bench/src/bin/ablation_coverage.rs

crates/bench/src/bin/ablation_coverage.rs:
