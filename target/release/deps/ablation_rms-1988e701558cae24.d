/root/repo/target/release/deps/ablation_rms-1988e701558cae24.d: crates/bench/src/bin/ablation_rms.rs

/root/repo/target/release/deps/ablation_rms-1988e701558cae24: crates/bench/src/bin/ablation_rms.rs

crates/bench/src/bin/ablation_rms.rs:
