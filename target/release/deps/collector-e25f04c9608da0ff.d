/root/repo/target/release/deps/collector-e25f04c9608da0ff.d: crates/collector/src/lib.rs crates/collector/src/breaker.rs crates/collector/src/chaos.rs crates/collector/src/daemon.rs crates/collector/src/demo.rs crates/collector/src/endpoints.rs crates/collector/src/history.rs crates/collector/src/http.rs crates/collector/src/ledger.rs crates/collector/src/scrape.rs crates/collector/src/snapshot.rs crates/collector/src/stats.rs

/root/repo/target/release/deps/libcollector-e25f04c9608da0ff.rlib: crates/collector/src/lib.rs crates/collector/src/breaker.rs crates/collector/src/chaos.rs crates/collector/src/daemon.rs crates/collector/src/demo.rs crates/collector/src/endpoints.rs crates/collector/src/history.rs crates/collector/src/http.rs crates/collector/src/ledger.rs crates/collector/src/scrape.rs crates/collector/src/snapshot.rs crates/collector/src/stats.rs

/root/repo/target/release/deps/libcollector-e25f04c9608da0ff.rmeta: crates/collector/src/lib.rs crates/collector/src/breaker.rs crates/collector/src/chaos.rs crates/collector/src/daemon.rs crates/collector/src/demo.rs crates/collector/src/endpoints.rs crates/collector/src/history.rs crates/collector/src/http.rs crates/collector/src/ledger.rs crates/collector/src/scrape.rs crates/collector/src/snapshot.rs crates/collector/src/stats.rs

crates/collector/src/lib.rs:
crates/collector/src/breaker.rs:
crates/collector/src/chaos.rs:
crates/collector/src/daemon.rs:
crates/collector/src/demo.rs:
crates/collector/src/endpoints.rs:
crates/collector/src/history.rs:
crates/collector/src/http.rs:
crates/collector/src/ledger.rs:
crates/collector/src/scrape.rs:
crates/collector/src/snapshot.rs:
crates/collector/src/stats.rs:
