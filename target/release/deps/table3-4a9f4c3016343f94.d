/root/repo/target/release/deps/table3-4a9f4c3016343f94.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-4a9f4c3016343f94: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
