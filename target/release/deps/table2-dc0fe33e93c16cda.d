/root/repo/target/release/deps/table2-dc0fe33e93c16cda.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-dc0fe33e93c16cda: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
