/root/repo/target/release/deps/corpus-d03d1dda655e79be.d: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/patterns.rs crates/corpus/src/stats.rs

/root/repo/target/release/deps/libcorpus-d03d1dda655e79be.rlib: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/patterns.rs crates/corpus/src/stats.rs

/root/repo/target/release/deps/libcorpus-d03d1dda655e79be.rmeta: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/patterns.rs crates/corpus/src/stats.rs

crates/corpus/src/lib.rs:
crates/corpus/src/gen.rs:
crates/corpus/src/patterns.rs:
crates/corpus/src/stats.rs:
