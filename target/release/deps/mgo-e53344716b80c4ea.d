/root/repo/target/release/deps/mgo-e53344716b80c4ea.d: crates/cli/src/bin/mgo.rs

/root/repo/target/release/deps/mgo-e53344716b80c4ea: crates/cli/src/bin/mgo.rs

crates/cli/src/bin/mgo.rs:
