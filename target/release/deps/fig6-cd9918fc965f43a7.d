/root/repo/target/release/deps/fig6-cd9918fc965f43a7.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-cd9918fc965f43a7: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
