/root/repo/target/release/deps/leakcore-02f6b524239bf16d.d: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs

/root/repo/target/release/deps/libleakcore-02f6b524239bf16d.rlib: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs

/root/repo/target/release/deps/libleakcore-02f6b524239bf16d.rmeta: crates/core/src/lib.rs crates/core/src/backtest.rs crates/core/src/ci.rs crates/core/src/evaluate.rs

crates/core/src/lib.rs:
crates/core/src/backtest.rs:
crates/core/src/ci.rs:
crates/core/src/evaluate.rs:
