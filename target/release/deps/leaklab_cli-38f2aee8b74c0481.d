/root/repo/target/release/deps/leaklab_cli-38f2aee8b74c0481.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libleaklab_cli-38f2aee8b74c0481.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libleaklab_cli-38f2aee8b74c0481.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
