//! Cross-crate integration tests: the full pipelines of the paper's
//! Fig 3, from mini-Go source through detection to reports.

use corpus::{Corpus, CorpusConfig, KindMix};
use fleet::{default_service, handlers, Fleet, FleetConfig, HandlerArg};
use gosim::Runtime;
use leakcore::ci::{CiConfig, CiGate};
use leakprof::{Config, LeakProf};
use staticlint::{Analyzer, PathCheck, RangeClose};

/// Source → compile → run → goleak → LeakProf signature: every layer
/// agrees on the same blocking location.
#[test]
fn all_layers_agree_on_the_leak_location() {
    let src = r#"
package billing

func Settle(fail bool) {
	results := make(chan int)
	go func() {
		sim.Work(5)
		results <- 1
	}()
	if fail {
		return
	}
	<-results
}
"#;
    // Layer 1: static analysis flags the send.
    let file = minigo::parse_file(src, "billing/settle.go").unwrap();
    let static_findings = PathCheck::new().analyze_file(&file);
    assert!(static_findings.iter().any(|f| f.loc.line == 8));

    // Layer 2: dynamic execution leaks exactly there.
    let prog = minigo::compile(src, "billing/settle.go").unwrap();
    let mut rt = Runtime::with_seed(5);
    prog.spawn_func(&mut rt, "billing.Settle", vec![true.into()])
        .unwrap();
    rt.run_until_blocked(10_000);
    let leaks = goleak::find_with_retry(&mut rt, &goleak::Options::default());
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].blocking_frame.as_ref().unwrap().loc.line, 8);

    // Layer 3: the profile signature matches the same site.
    let profile = rt.goroutine_profile("it");
    let op = leakprof::blocked_op(&profile.goroutines[0]).unwrap();
    assert_eq!(op.loc.line, 8);
    assert_eq!(op.kind, leakprof::ChanOpKind::Send);
}

/// The CI gate catches exactly the corpus's injected leaks — cross-crate
/// ground-truth consistency at a moderate scale.
#[test]
fn ci_gate_findings_are_a_subset_of_ground_truth_sites() {
    let repo = Corpus::generate(CorpusConfig {
        packages: 80,
        leak_rate: 0.5,
        seed: 0xE2E,
        mix: KindMix::concurrent_heavy(),
        ..CorpusConfig::default()
    });
    let truth = repo.truth_locs();
    assert!(!truth.is_empty());
    let gate = CiGate::new(CiConfig::default());
    let mut found = 0;
    for pkg in repo.leaky_packages() {
        for outcome in gate.run_package(pkg) {
            for leak in outcome.verdict.all_leaks() {
                if let Some(f) = &leak.blocking_frame {
                    if !f.loc.is_unknown() {
                        assert!(
                            truth.contains(&(f.loc.file.to_string(), f.loc.line)),
                            "unexpected leak at {} (not injected)",
                            f.loc
                        );
                        found += 1;
                    }
                }
            }
        }
    }
    assert!(found > 0);
}

/// Fleet profiles → LeakProf → owner routing, end to end.
#[test]
fn fleet_sweep_routes_alert_to_owner() {
    let mut f = Fleet::new(FleetConfig {
        ticks_per_day: 24,
        ..FleetConfig::default()
    });
    let mut spec = default_service(
        "pay",
        3,
        handlers::premature_return_leak("pay", 8_000),
        handlers::premature_return_fixed("pay", 8_000),
    );
    spec.arg = HandlerArg::True;
    spec.leak_activation = 0.6;
    f.add_service(spec);
    f.run_days(2);

    let mut lp = LeakProf::new(Config {
        threshold: 30,
        ast_filter: true,
        top_n: 3,
    });
    for (src, path) in f.handler_sources() {
        lp.index_source(&src, &path).unwrap();
    }
    lp.add_owner("pay/", "team-pay");
    let report = lp.analyze(&f.collect_profiles());
    assert_eq!(report.suspects.len(), 1, "{}", report.render());
    assert_eq!(report.suspects[0].owner.as_deref(), Some("team-pay"));
    assert_eq!(report.suspects[0].stats.op.loc.line, 7);
}

/// The range linter and the dynamic gate agree on unclosed-range leaks.
#[test]
fn range_linter_agrees_with_dynamic_detection() {
    let src = r#"
package etl

func Run(workers int, items int) {
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for v := range ch {
				sim.Work(v)
			}
		}()
	}
	for i := 0; i < items; i++ {
		ch <- i
	}
}
"#;
    let file = minigo::parse_file(src, "etl/run.go").unwrap();
    let lint = RangeClose::new().analyze_file(&file);
    assert_eq!(lint.len(), 1);
    let lint_line = lint[0].loc.line;

    let prog = minigo::compile(src, "etl/run.go").unwrap();
    let mut rt = Runtime::with_seed(0);
    prog.spawn_func(&mut rt, "etl.Run", vec![3i64.into(), 5i64.into()])
        .unwrap();
    rt.run_until_blocked(100_000);
    let profile = rt.goroutine_profile("it");
    assert_eq!(profile.len(), 3);
    for g in &profile.goroutines {
        assert_eq!(g.blocking_frame().unwrap().loc.line, lint_line);
    }
}

/// Fixing the leak the way the paper prescribes empties every detector.
#[test]
fn fixed_code_is_clean_everywhere() {
    let src = r#"
package etl

func Run(workers int, items int) {
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for v := range ch {
				sim.Work(v)
			}
		}()
	}
	for i := 0; i < items; i++ {
		ch <- i
	}
	close(ch)
}
"#;
    let file = minigo::parse_file(src, "etl/run.go").unwrap();
    assert!(RangeClose::new().analyze_file(&file).is_empty());
    assert!(PathCheck::new().analyze_file(&file).is_empty());

    let prog = minigo::compile(src, "etl/run.go").unwrap();
    let mut rt = Runtime::with_seed(0);
    prog.spawn_func(&mut rt, "etl.Run", vec![3i64.into(), 5i64.into()])
        .unwrap();
    rt.run_until_blocked(100_000);
    assert_eq!(rt.live_count(), 0);
}
