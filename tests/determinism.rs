//! Workspace-level determinism guarantees: every stochastic component is
//! seeded and replays identically — the property that makes the
//! experiments in EXPERIMENTS.md reproducible to the byte.

use corpus::{Corpus, CorpusConfig};
use fleet::{default_service, handlers, Fleet, FleetConfig, HandlerArg};
use leakcore::backtest::{run as backtest, BacktestConfig};

#[test]
fn corpus_is_bit_reproducible() {
    let make = || {
        serde_json::to_string(&Corpus::generate(CorpusConfig {
            packages: 60,
            seed: 99,
            ..CorpusConfig::default()
        }))
        .unwrap()
    };
    assert_eq!(make(), make());
}

#[test]
fn fleet_samples_are_reproducible() {
    let make = || {
        let mut f = Fleet::new(FleetConfig {
            ticks_per_day: 12,
            seed: 3,
            ..FleetConfig::default()
        });
        let mut spec = default_service(
            "s",
            2,
            handlers::timeout_leak("s", 5_000),
            handlers::timeout_fixed("s", 5_000),
        );
        spec.arg = HandlerArg::NilCtx;
        f.add_service(spec);
        f.run_days(1);
        serde_json::to_string(f.samples()).unwrap()
    };
    assert_eq!(make(), make());
}

#[test]
fn backtest_is_reproducible() {
    let cfg = BacktestConfig {
        weeks: 4,
        deploy_week: 3,
        prs_per_week: 4,
        migration_week: None,
        seed: 12,
        ..BacktestConfig::default()
    };
    let a = serde_json::to_string(&backtest(&cfg)).unwrap();
    let b = serde_json::to_string(&backtest(&cfg)).unwrap();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_diverge() {
    let gen = |seed| {
        serde_json::to_string(&Corpus::generate(CorpusConfig {
            packages: 60,
            seed,
            ..CorpusConfig::default()
        }))
        .unwrap()
    };
    assert_ne!(gen(1), gen(2));
}
