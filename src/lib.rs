//! # leaklab — reproducing "Unveiling and Vanquishing Goroutine Leaks in
//! Enterprise Microservices" (CGO 2024) in Rust
//!
//! This umbrella crate re-exports the whole toolchain:
//!
//! | crate | role |
//! |---|---|
//! | [`gosim`] | deterministic Go-like runtime (goroutines, channels, select, virtual time, profiles) |
//! | [`minigo`] | mini-Go frontend (parser, AST, lowering to the runtime) |
//! | [`goleak`] | test-time leak detection (paper §IV) |
//! | [`leakprof`] | production profile analysis (paper §V) |
//! | [`staticlint`] | GCatch/Goat/Gomela-like static baselines + range linter |
//! | [`corpus`] | synthetic monorepo with ground-truth leak injections |
//! | [`fleet`] | production fleet simulator (RSS/CPU models, profile sweeps) |
//! | [`leakcore`] | the Fig 3 methodology: CI gate, backtest, tool evaluation |
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system
//! inventory and substitutions, and `EXPERIMENTS.md` for the paper-vs-
//! measured record of every table and figure.
//!
//! ```
//! // Detect the paper's Listing 1 leak in three steps.
//! use gosim::Runtime;
//! use goleak::{find_with_retry, Options};
//!
//! let prog = minigo::compile(
//!     "package m\n\nfunc Leak() {\n\tch := make(chan int)\n\tgo func() {\n\t\tch <- 1\n\t}()\n}\n",
//!     "m/leak.go",
//! ).expect("compiles");
//! let mut rt = Runtime::with_seed(0);
//! prog.spawn_func(&mut rt, "m.Leak", vec![]).unwrap();
//! rt.run_until_blocked(10_000);
//! let leaks = find_with_retry(&mut rt, &Options::default());
//! assert_eq!(leaks.len(), 1);
//! ```

pub use corpus;
pub use fleet;
pub use goleak;
pub use gosim;
pub use leakcore;
pub use leakprof;
pub use minigo;
pub use staticlint;
